// Shm: the shared-memory rail three ways.
//
// First an in-process pair — two engines, two mappings of one
// anonymous segment — measures pingpong half-RTT on the inline path
// and bandwidth on the zero-copy rendezvous path. Then the real thing:
// the process re-executes itself as a child, the two processes agree
// only on a segment name, and the same pingpong crosses a true process
// boundary through /dev/shm. Finally a negotiated session brings up a
// heterogeneous tcp+udp+shm gate and stripes megabytes across all
// three transports at once, the engine's split strategy apportioning
// chunks by declared bandwidth.
//
// Linux-only: on platforms without /dev/shm the demo prints why and
// exits cleanly.
package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"time"

	"newmad"
)

const (
	pingTag   = 1
	echoTag   = 2
	pingSize  = 64
	bulkSize  = 4 << 20
	pingIters = 2000
)

// duo wires one driver pair into two single-rail engines.
type duo struct {
	engA, engB     *newmad.Engine
	gateAB, gateBA *newmad.Gate
}

func newDuo(a, b newmad.Driver) *duo {
	d := &duo{
		engA: newmad.New(newmad.Config{Strategy: newmad.StrategyFIFO()}),
		engB: newmad.New(newmad.Config{Strategy: newmad.StrategyFIFO()}),
	}
	d.gateAB = d.engA.NewGate("B")
	d.gateBA = d.engB.NewGate("A")
	d.gateAB.AddRail(a)
	d.gateBA.AddRail(b)
	return d
}

func (d *duo) close() {
	d.engA.Close()
	d.engB.Close()
}

// pingpong drives iters round trips of size bytes from the A side,
// echoing on a goroutine, and returns the mean half-RTT.
func (d *duo) pingpong(size, iters int) (time.Duration, error) {
	msg := bytes.Repeat([]byte{0xA5}, size)
	back := make([]byte, size)
	go echoLoop(d.engB, d.gateBA, size, iters)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := d.engA.Wait(d.gateAB.Isend(pingTag, msg)); err != nil {
			return 0, err
		}
		if err := d.engA.Wait(d.gateAB.Irecv(echoTag, back)); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	if !bytes.Equal(back, msg) {
		return 0, fmt.Errorf("payload corrupted")
	}
	return elapsed / time.Duration(2*iters), nil
}

// echoLoop receives iters pings of size bytes and sends each one back.
func echoLoop(eng *newmad.Engine, gate *newmad.Gate, size, iters int) {
	buf := make([]byte, size)
	for i := 0; i < iters; i++ {
		if eng.Wait(gate.Irecv(pingTag, buf)) != nil {
			return
		}
		if eng.Wait(gate.Isend(echoTag, buf)) != nil {
			return
		}
	}
}

// inProcess runs the pair demo: latency on the inline path, bandwidth
// through the rendezvous arena.
func inProcess() error {
	a, b, err := newmad.NewShmPair(newmad.ShmOptions{})
	if err != nil {
		return err
	}
	d := newDuo(a, b)
	defer d.close()
	half, err := d.pingpong(pingSize, pingIters)
	if err != nil {
		return err
	}
	fmt.Printf("in-process pair:    %4d B pingpong      half-RTT %8v\n", pingSize, half)
	start := time.Now()
	n := 8
	go echoLoop(d.engB, d.gateBA, bulkSize, n)
	msg := bytes.Repeat([]byte{0x3C}, bulkSize)
	back := make([]byte, bulkSize)
	for i := 0; i < n; i++ {
		if err := d.engA.Wait(d.gateAB.Isend(pingTag, msg)); err != nil {
			return err
		}
		if err := d.engA.Wait(d.gateAB.Irecv(echoTag, back)); err != nil {
			return err
		}
	}
	mbps := float64(2*n*bulkSize) / time.Since(start).Seconds() / 1e6
	fmt.Printf("in-process pair:    %4d MiB rendezvous  %8.0f MB/s\n", bulkSize>>20, mbps)
	return nil
}

// childMain is the spawned half of the two-process demo: attach to the
// named segment and echo until the parent is done.
func childMain(segName string) {
	drv, err := newmad.NewShm(segName, newmad.ShmOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	eng := newmad.New(newmad.Config{Strategy: newmad.StrategyFIFO()})
	defer eng.Close()
	gate := eng.NewGate("parent")
	gate.AddRail(drv)
	echoLoop(eng, gate, pingSize, pingIters)
}

// twoProcess re-executes this binary as a child that shares only a
// segment name, then runs the pingpong across the process boundary.
func twoProcess() error {
	segName := newmad.ShmSegmentName()
	cmd := exec.Command(os.Args[0], "-child", segName)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	defer cmd.Wait()
	// Both processes call the symmetric constructor on the agreed name;
	// whoever arrives first creates, the other attaches.
	drv, err := newmad.NewShm(segName, newmad.ShmOptions{})
	if err != nil {
		return err
	}
	eng := newmad.New(newmad.Config{Strategy: newmad.StrategyFIFO()})
	defer eng.Close()
	gate := eng.NewGate("child")
	gate.AddRail(drv)
	msg := bytes.Repeat([]byte{0x7B}, pingSize)
	back := make([]byte, pingSize)
	start := time.Now()
	for i := 0; i < pingIters; i++ {
		if err := eng.Wait(gate.Isend(pingTag, msg)); err != nil {
			return err
		}
		if err := eng.Wait(gate.Irecv(echoTag, back)); err != nil {
			return err
		}
	}
	half := time.Since(start) / time.Duration(2*pingIters)
	if !bytes.Equal(back, msg) {
		return fmt.Errorf("payload corrupted across processes")
	}
	fmt.Printf("two processes:      %4d B pingpong      half-RTT %8v\n", pingSize, half)
	return nil
}

// session brings up a negotiated tcp+udp+shm gate and stripes one
// transfer across all three rails.
func session() error {
	rails := []newmad.RailSpec{
		{Addr: "127.0.0.1:0", Profile: newmad.Profile{Name: "tcp", Bandwidth: 800e6, EagerMax: 32 << 10, Latency: 20 * time.Microsecond}},
		{Addr: "127.0.0.1:0", Proto: "udp", Profile: newmad.Profile{Name: "udp", Bandwidth: 400e6, EagerMax: 32 << 10, PIOMax: 8 << 10, Latency: 40 * time.Microsecond}},
		{Proto: "shm", Profile: newmad.Profile{Name: "shm", Bandwidth: 2e9, EagerMax: 32 << 10, PIOMax: 4 << 10, Latency: time.Microsecond}},
	}
	engA := newmad.New(newmad.Config{Strategy: newmad.StrategySplit()})
	defer engA.Close()
	engB := newmad.New(newmad.Config{Strategy: newmad.StrategySplit()})
	defer engB.Close()
	srv, err := newmad.ListenSession(context.Background(), engA, "alpha", "127.0.0.1:0", rails, newmad.SessionOptions{})
	if err != nil {
		return err
	}
	defer srv.Close()
	type acceptRes struct {
		gate *newmad.Gate
		err  error
	}
	accepted := make(chan acceptRes, 1)
	go func() {
		g, _, err := srv.Accept(context.Background())
		accepted <- acceptRes{g, err}
	}()
	gateBA, _, err := newmad.ConnectSession(context.Background(), engB, "beta", srv.ControlAddr(), newmad.SessionOptions{})
	if err != nil {
		return err
	}
	res := <-accepted
	if res.err != nil {
		return res.err
	}
	gateAB := res.gate

	msg := make([]byte, bulkSize)
	for i := range msg {
		msg[i] = byte(i * 131)
	}
	back := make([]byte, bulkSize)
	done := make(chan error, 1)
	go func() {
		done <- engB.Wait(gateBA.Irecv(pingTag, back))
	}()
	if err := engA.Wait(gateAB.Isend(pingTag, msg)); err != nil {
		return err
	}
	if err := <-done; err != nil {
		return err
	}
	if !bytes.Equal(back, msg) {
		return fmt.Errorf("striped payload corrupted")
	}
	fmt.Printf("session, 3 rails:   %4d MiB striped, per-rail share:\n", bulkSize>>20)
	for _, r := range gateAB.Rails() {
		pkts, bs := r.Stats()
		fmt.Printf("  %-4s %4d packets %9d bytes\n", r.Profile().Name, pkts, bs)
	}
	return nil
}

func main() {
	if len(os.Args) == 3 && os.Args[1] == "-child" {
		childMain(os.Args[2])
		return
	}
	if !newmad.ShmSupported() {
		fmt.Println("shared-memory rails need Linux with a usable /dev/shm; nothing to demo here")
		return
	}
	for _, step := range []func() error{inProcess, twoProcess, session} {
		if err := step(); err != nil {
			fmt.Fprintln(os.Stderr, "shm demo:", err)
			os.Exit(1)
		}
	}
}
