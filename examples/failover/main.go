// Failover: stream a sequence of large messages across two simulated
// rails with the split strategy, then kill the Myri-10G rail mid-stream.
// The engine reroutes the orphaned chunk ranges and all subsequent
// traffic onto the surviving Quadrics rail; every byte still arrives
// intact, at the survivor's bandwidth. This is the network fault
// tolerance the paper's related work (LA-MPI) motivates.
//
// Both sides wait with virtual-time deadlines (WaitSimCtx): if failover
// ever wedged a transfer, the deadline would surface it as an error
// instead of hanging the run — the timeout-under-failover workload the
// context-aware request lifecycle exists for.
package main

import (
	"context"
	"fmt"
	"time"

	"newmad"
)

func main() {
	pair := newmad.NewSimPair(newmad.SimPairConfig{
		NICs:     []newmad.NICParams{newmad.Myri10G(), newmad.QsNetII()},
		Strategy: newmad.StrategySplit,
		Sample:   true,
	})

	const (
		tag  = 1
		msgN = 8
		size = 2 << 20
	)
	send := make([]byte, size)
	for i := range send {
		send[i] = byte(i * 11)
	}
	recvBufs := make([][]byte, msgN)
	for i := range recvBufs {
		recvBufs[i] = make([]byte, size)
	}

	// Even with a rail dying mid-stream, every transfer must finish well
	// inside this virtual-time budget on the surviving rail.
	const perMsgBudget = 100 * time.Millisecond
	start := pair.W.Now()
	pair.W.Spawn("receiver", func(p *newmad.Proc) {
		for i := 0; i < msgN; i++ {
			rr := pair.GateBA.Irecv(tag, recvBufs[i])
			ctx := newmad.WithSimTimeout(context.Background(), p, perMsgBudget)
			if err := newmad.WaitSimCtx(ctx, p, rr); err != nil {
				fmt.Printf("t=%8v  message %d FAILED: %v\n",
					(p.Now() - start).Duration(), i, err)
				rr.Cancel(err)
				return
			}
			fmt.Printf("t=%8v  message %d received (%d bytes)\n",
				(p.Now() - start).Duration(), i, rr.Len())
		}
	})
	pair.W.Spawn("sender", func(p *newmad.Proc) {
		for i := 0; i < msgN; i++ {
			if i == msgN/2 {
				// Pull the plug on the fast rail mid-stream.
				pair.GateAB.Rails()[0].MarkDown()
				fmt.Printf("t=%8v  *** myri10g rail marked down ***\n",
					(p.Now() - start).Duration())
			}
			sr := pair.GateAB.Isend(tag, send)
			ctx := newmad.WithSimTimeout(context.Background(), p, perMsgBudget)
			if err := newmad.WaitSimCtx(ctx, p, sr); err != nil {
				fmt.Printf("t=%8v  send %d FAILED: %v\n",
					(p.Now() - start).Duration(), i, err)
				sr.Cancel(err)
				return
			}
		}
	})
	pair.W.Run()

	for i, buf := range recvBufs {
		for j := range buf {
			if buf[j] != byte(j*11) {
				fmt.Printf("CORRUPTION in message %d at byte %d\n", i, j)
				return
			}
		}
	}
	st := pair.GateAB.Stats()
	fmt.Printf("all %d messages intact; %d rail(s) failed, %d packets sent, %d rendezvous\n",
		msgN, st.FailedRails, st.PktsSent, st.RdvStarted)
}
