// Package newmad is a Go reproduction of the NewMadeleine communication
// library's multi-rail engine (Aumage, Brunet, Mercier, Namyst — "High-
// Performance Multi-Rail Support with the NewMadeleine Communication
// Library", HCW/IPDPS 2007).
//
// The engine collects application segments, accumulates them in a
// backlog while NICs are busy, and consults a pluggable optimization
// strategy each time a rail goes idle. Strategies aggregate small
// segments, balance segments across heterogeneous rails, and strip large
// messages into bandwidth-proportional chunks.
//
// Progress is sharded per gate: every gate (peer connection) is an
// independent progress domain with its own lock, so traffic to different
// peers proceeds in parallel — the engine itself keeps only a small
// registry. Completion is event-driven: requests expose a completion
// channel and Engine.Wait blocks on it, woken directly by the completing
// driver event. Only rails whose driver genuinely needs pumping (TCP)
// are ever polled, via the engine's active-rail set; in-memory and
// simulated rails are never polled.
//
// A minimal exchange over two simulated rails:
//
//	pair := newmad.NewSimPair(newmad.SimPairConfig{
//		NICs:     []newmad.NICParams{newmad.Myri10G(), newmad.QsNetII()},
//		Strategy: newmad.StrategySplit,
//	})
//	... see examples/quickstart
//
// Real deployments replace the simulated rails with TCP rails (DialTCP /
// AcceptTCP, or negotiated multi-rail sessions via ListenSession /
// ConnectSession) and wait with Engine.Wait, which pumps the active poll
// set while it blocks.
package newmad

import (
	"context"
	"net"
	"time"

	"newmad/internal/bench"
	"newmad/internal/core"
	"newmad/internal/des"
	"newmad/internal/drivers/shmdrv"
	"newmad/internal/drivers/tcpdrv"
	"newmad/internal/drivers/udpdrv"
	"newmad/internal/mpl"
	"newmad/internal/relnet"
	"newmad/internal/sampling"
	"newmad/internal/session"
	"newmad/internal/shmring"
	"newmad/internal/simnet"
	"newmad/internal/simnet/chaos"
	"newmad/internal/simnet/topo"
	"newmad/internal/strategy"
	"newmad/internal/trace"
)

// Core engine types.
type (
	// Engine is one node's communication library instance.
	Engine = core.Engine
	// Config parameterizes an Engine.
	Config = core.Config
	// Gate is a connection to one peer with its rails and backlog.
	Gate = core.Gate
	// Rail is one network path of a gate.
	Rail = core.Rail
	// Packer builds a message segment by segment.
	Packer = core.Packer
	// SendReq tracks an outgoing message.
	SendReq = core.SendReq
	// RecvReq tracks an incoming message.
	RecvReq = core.RecvReq
	// Request is the common request interface.
	Request = core.Request
	// Strategy is a pluggable optimizing scheduler.
	Strategy = core.Strategy
	// Backlog is the per-gate pending-work pool strategies rewrite.
	Backlog = core.Backlog
	// Unit is one schedulable segment or rendezvous body.
	Unit = core.Unit
	// Driver is the transmit-layer interface.
	Driver = core.Driver
	// Profile describes a rail's performance characteristics.
	Profile = core.Profile
	// Packet is one transmit-layer unit.
	Packet = core.Packet
	// Header is the logical packet header.
	Header = core.Header
	// Clock abstracts time and CPU cost accounting.
	Clock = core.Clock
	// TraceEvent is one engine diagnostic event.
	TraceEvent = core.TraceEvent
)

// New creates an engine.
func New(cfg Config) *Engine { return core.New(cfg) }

// Request lifecycle errors.
var (
	// ErrCanceled reports a request abandoned by Request.Cancel with no
	// more specific cause.
	ErrCanceled = core.ErrCanceled
	// ErrMsgAborted reports a receive whose sender abandoned the message
	// (a cancelled send, or a rail failure with delivery unknown).
	ErrMsgAborted = core.ErrMsgAborted
	// ErrRailDown reports a send attempted on a failed rail.
	ErrRailDown = core.ErrRailDown
	// ErrPeerRecvGone reports a send abandoned because the peer
	// cancelled the matching receive mid-rendezvous.
	ErrPeerRecvGone = core.ErrPeerRecvGone
)

// Strategies, in the order the paper develops them.

// StrategyFIFO returns the baseline strategy: one packet per segment on
// rail 0.
func StrategyFIFO() Strategy { return strategy.NewFIFO(0) }

// StrategyAggreg returns opportunistic aggregation on rail 0.
func StrategyAggreg() Strategy { return strategy.NewAggreg(0) }

// StrategyBalance returns greedy multi-rail balancing (paper §3.2).
func StrategyBalance() Strategy { return strategy.NewBalance() }

// StrategyAggRail returns aggregation onto the fastest rail plus greedy
// balancing of large segments (paper §3.3).
func StrategyAggRail() Strategy { return strategy.NewAggRail() }

// StrategySplit returns the paper's final strategy (§3.4): aggregation on
// the fastest rail plus adaptive bandwidth-ratio stripping of large
// messages.
func StrategySplit() Strategy { return strategy.NewSplit(strategy.SplitRatio) }

// StrategySplitIso returns the equal-shares stripping variant used as the
// Figure 7 comparison point.
func StrategySplitIso() Strategy { return strategy.NewSplit(strategy.SplitIso) }

// StrategySplitDyn returns the dynamic work-stealing stripping extension:
// idle rails repeatedly take their bandwidth share of the remaining body
// rather than committing to a one-shot plan, adapting to competing
// traffic and failures (not in the paper; see DESIGN.md §5).
func StrategySplitDyn() Strategy { return strategy.NewSplitDyn() }

// StrategySplitDynAdaptive returns the estimator-adaptive stripping
// variant of StrategySplitDyn: each idle rail's bite is sized from the
// bandwidth its online estimator has observed it deliver, not the one
// its profile declared, so shares migrate as rails degrade, recover or
// get resurrected (fresh rails start from an optimistic prior and are
// never starved).
func StrategySplitDynAdaptive() Strategy { return strategy.NewSplitDynAdaptive() }

// HedgeStrategy wraps an inner strategy with tail-latency hedging: an
// eligible small send whose primary packet blows past the rail's
// completion-time quantile races a speculative duplicate down a second
// rail, the first copy to arrive completes the receive, and the loser is
// cancelled. Stats exposes the hedge counters.
type HedgeStrategy = strategy.Hedge

// HedgeStats are the hedging counters: eligible sends, duplicates
// raced, losers cancelled, primary and duplicate bytes.
type HedgeStats = strategy.HedgeStats

// StrategyHedge wraps inner with default hedging (p90 stagger, clamped).
func StrategyHedge(inner Strategy) *HedgeStrategy { return strategy.NewHedge(inner) }

// StrategyHedgeTuned wraps inner with explicit hedging knobs: maxSize
// bounds eligible payloads (0 = eager-regime default), quantile picks
// the stagger from the primary rail's completion-time distribution, and
// the stagger is clamped to [minStagger, maxStagger].
func StrategyHedgeTuned(inner Strategy, maxSize int, quantile float64, minStagger, maxStagger time.Duration) *HedgeStrategy {
	return strategy.NewHedgeTuned(inner, maxSize, quantile, minStagger, maxStagger)
}

// RailEstimator is a rail's online latency/bandwidth/quantile model,
// fed from packet completions (Rail.Estimator): the source of hedge
// staggers, adaptive split weights and selector re-fits.
type RailEstimator = core.Estimator

// StrategyByName builds a strategy from its registry name ("fifo",
// "aggreg", "balance", "aggrail", "split", "split-iso", "split-dyn",
// "split-dyn-adaptive", "hedge").
func StrategyByName(name string) (Strategy, error) { return strategy.New(name) }

// Simulated platform (the paper's testbed substitute).
type (
	// NICParams describes a simulated NIC model.
	NICParams = simnet.NICParams
	// HostParams describes a simulated host.
	HostParams = simnet.HostParams
	// SimPair is a two-node simulated platform with engines on both
	// sides.
	SimPair = bench.Pair
	// SimPairConfig configures a SimPair.
	SimPairConfig = bench.PairConfig
	// World is the discrete-event simulation kernel.
	World = des.World
	// Proc is a simulated process.
	Proc = des.Proc
	// SimTime is a virtual-time instant (World.Now, Proc.Now); its
	// Duration method converts to wall units.
	SimTime = des.Time
)

// Myri10G returns the paper's Myri-10G/MX NIC model (~2.8 us, ~1200 MB/s).
func Myri10G() NICParams { return simnet.Myri10G() }

// QsNetII returns the paper's Quadrics QM500/Elan NIC model (~1.7 us,
// ~850 MB/s).
func QsNetII() NICParams { return simnet.QsNetII() }

// GigE returns a commodity gigabit NIC model for extension experiments.
func GigE() NICParams { return simnet.GigE() }

// Opteron returns the paper's host model (shared I/O bus, single PIO
// lane).
func Opteron() HostParams { return simnet.Opteron() }

// NewSimPair builds a two-node simulated platform.
func NewSimPair(cfg SimPairConfig) *SimPair { return bench.NewPair(cfg) }

// SimCluster is an N-node fully connected simulated platform.
type SimCluster = bench.Cluster

// SimClusterConfig configures a SimCluster.
type SimClusterConfig = bench.ClusterConfig

// NewSimCluster builds an N-node simulated platform with an mpl
// communicator per rank (Cluster.Comm / Cluster.SpawnRanks).
func NewSimCluster(cfg SimClusterConfig) *SimCluster { return bench.NewCluster(cfg) }

// Declarative topology and chaos (internal/simnet/topo, …/chaos): racks
// of hosts wired into a full NIC mesh per rail class, and fault
// schedules armed on cancellable DES timers against the built links.
type (
	// TopoBuilder accumulates a declarative platform description:
	// NewTopo().Rack(4).Rack(4).Link(Myri10G()).Oversubscribe(4).Build(w).
	TopoBuilder = topo.Builder
	// Topology is a built platform: hosts, racks and the NIC mesh.
	Topology = topo.Topology
	// ChaosSchedule is a named list of faults (link flaps, bandwidth
	// degradation, loss, jitter, rack partitions) with virtual-time
	// offsets, inert until armed into a world.
	ChaosSchedule = chaos.Schedule
	// ChaosFault is one scheduled perturbation of a ChaosSchedule.
	ChaosFault = chaos.Fault
	// ChaosArmed is a schedule wired into a world; Stop cancels every
	// fault that has not fired yet.
	ChaosArmed = chaos.Armed
)

// NewWorld returns an empty discrete-event world for a simulated
// platform (topologies are built into a world; see NewTopo).
func NewWorld() *World { return des.NewWorld() }

// NewTopo returns an empty topology builder.
func NewTopo() *TopoBuilder { return topo.New() }

// NewChaosSchedule returns an empty fault schedule.
func NewChaosSchedule(name string) *ChaosSchedule { return chaos.NewSchedule(name) }

// NewSimClusterFromTopo wires engines, gates and rails over a built
// topology (cfg.Nodes, cfg.NICs and cfg.Host are ignored — the topology
// fixes them), sharing its world and NIC mesh so chaos schedules built
// against the topology perturb the running cluster.
func NewSimClusterFromTopo(top *Topology, cfg SimClusterConfig) *SimCluster {
	return bench.ClusterFromTopo(top, cfg)
}

// Comm is a ranked communicator over the engine (internal/mpl): blocking
// point-to-point operations plus the collectives subsystem — Barrier,
// Bcast, Gather, Scatter, Reduce, Allreduce, Allgather, Alltoall and
// their nonblocking I* variants returning a Coll handle.
type Comm = mpl.Comm

// Coll is an in-flight nonblocking collective: a Request with Wait/Test
// conveniences. Several may be outstanding at once, each driving its
// gates through their own progress domains.
type Coll = mpl.Coll

// CollAlgo names a collective algorithm family.
type CollAlgo = mpl.Algo

// Collective algorithm families for CollSelector.Force and ParseCollAlgo.
const (
	CollAuto     = mpl.AlgoAuto
	CollLinear   = mpl.AlgoLinear
	CollTree     = mpl.AlgoTree
	CollPipeline = mpl.AlgoPipeline
)

// CollSelector picks the collective algorithm per message size and rank
// count (linear fan-out / binomial tree / chunked pipeline).
type CollSelector = mpl.Selector

// ReduceOp is an elementwise reduction operator for Reduce/Allreduce.
type ReduceOp = mpl.Op

// OpSumInt64 sums little-endian int64 elements.
func OpSumInt64() ReduceOp { return mpl.OpSumInt64() }

// OpSumUint8 sums bytes modulo 256.
func OpSumUint8() ReduceOp { return mpl.OpSumUint8() }

// OpXor xors bytes.
func OpXor() ReduceOp { return mpl.OpXor() }

// DefaultCollSelector returns the static algorithm-selection thresholds.
func DefaultCollSelector() CollSelector { return mpl.DefaultSelector() }

// CollSelectorFromProfiles derives selection thresholds from rail
// profiles (declared by drivers or measured by sampling).
func CollSelectorFromProfiles(profs []Profile) CollSelector {
	return mpl.SelectorFromProfiles(profs)
}

// CollSelectorFromRails derives selection thresholds from the rails'
// online estimators (falling back to profiles while a rail has no
// samples) — the fit behind Comm.SetAdaptive's re-fit epochs.
func CollSelectorFromRails(rails []*Rail) CollSelector {
	return mpl.SelectorFromRails(rails)
}

// ParseCollAlgo parses "auto", "linear", "tree" or "pipeline".
func ParseCollAlgo(s string) (CollAlgo, error) { return mpl.ParseAlgo(s) }

// WaitSim parks a simulated process until the requests complete.
func WaitSim(p *Proc, reqs ...Request) { bench.WaitReqs(p, reqs...) }

// WaitSimCtx parks a simulated process until the requests complete or
// the virtual-time deadline attached with WithSimDeadline/WithSimTimeout
// expires — deadlines are read against the simulated clock, not the wall
// clock.
func WaitSimCtx(ctx context.Context, p *Proc, reqs ...Request) error {
	return bench.WaitReqsCtx(ctx, p, reqs...)
}

// WithSimDeadline attaches an absolute virtual-time deadline to ctx,
// observed by WaitSimCtx and the *Ctx operations of simulated
// communicators.
func WithSimDeadline(ctx context.Context, t des.Time) context.Context {
	return bench.WithSimDeadline(ctx, t)
}

// WithSimTimeout attaches a virtual-time deadline d from the process's
// current virtual now.
func WithSimTimeout(ctx context.Context, p *Proc, d time.Duration) context.Context {
	return bench.WithSimTimeout(ctx, p, d)
}

// Sessions: negotiated multi-rail bring-up between two processes.

// RailSpec declares one rail a session server offers: a TCP stream by
// default, with Proto "udp" a datagram rail under the relnet
// reliability layer, or with Proto "shm" a same-host shared-memory
// rail. One session may mix all three.
type RailSpec = session.RailSpec

// SessionServer accepts negotiated multi-rail sessions.
type SessionServer = session.Server

// SessionOptions parameterizes session establishment — most notably
// HandshakeTimeout, which replaces the previously hardcoded 30-second
// socket deadlines.
type SessionOptions = session.Options

// ListenSession starts a session server: a control listener plus one
// listener per offered rail. Accept(ctx) returns a ready multi-rail
// gate; waiting for a client is bounded by ctx, the negotiation by
// opts.HandshakeTimeout.
func ListenSession(ctx context.Context, eng *Engine, name, ctrlAddr string, rails []RailSpec, opts SessionOptions) (*SessionServer, error) {
	return session.Listen(ctx, eng, name, ctrlAddr, rails, opts)
}

// ConnectSession dials a session server and brings up every offered
// rail, returning the gate and the server's name. The negotiation is
// bounded by opts.HandshakeTimeout and ctx, whichever is tighter.
//
// With SessionOptions.Probe set, a background prober re-dials downed
// tcp/udp rails through the server's resurrection listener (the server
// must have been started with SessionOptions.Resurrect); call
// StopSessionProbe before closing the engine.
func ConnectSession(ctx context.Context, eng *Engine, name, ctrlAddr string, opts SessionOptions) (*Gate, string, error) {
	return session.Connect(ctx, eng, name, ctrlAddr, opts)
}

// StopSessionProbe stops the rail-resurrection prober attached to a
// gate by ConnectSession (a no-op if none is) and returns once the
// prober goroutine has exited.
func StopSessionProbe(g *Gate) { session.StopProbe(g) }

// TCP rails (real sockets).

// TCPOptions configures a TCP rail.
type TCPOptions = tcpdrv.Options

// DialTCP connects a TCP rail to addr.
func DialTCP(addr string, opts TCPOptions) (Driver, error) { return tcpdrv.Dial(addr, opts) }

// DialTCPCtx connects a TCP rail to addr under ctx.
func DialTCPCtx(ctx context.Context, addr string, opts TCPOptions) (Driver, error) {
	return tcpdrv.DialCtx(ctx, addr, opts)
}

// AcceptTCP accepts one TCP rail on l.
func AcceptTCP(l net.Listener, opts TCPOptions) (Driver, error) { return tcpdrv.Accept(l, opts) }

// AcceptTCPCtx accepts one TCP rail on l under ctx: cancellation pokes
// the listener deadline so the blocked accept fails promptly.
func AcceptTCPCtx(ctx context.Context, l net.Listener, opts TCPOptions) (Driver, error) {
	return tcpdrv.AcceptCtx(ctx, l, opts)
}

// Reliability layer (ack/retransmit) and UDP rails.

// RelConfig tunes the relnet reliability layer: RTO and backoff cap,
// retry budget, window size, clock. The zero value derives everything
// from the rail profile (SimClusterConfig.Rel, UDPOptions.Rel).
type RelConfig = relnet.Config

// RelStats are the reliability layer's protocol counters: segments and
// acks each way, retransmissions (timeout and fast), duplicates and
// garbage dropped. SimCluster.RelStats sums them across reliable rails.
type RelStats = relnet.Stats

// ReliableDriver is a relnet-wrapped rail driver; Stats exposes its
// protocol counters.
type ReliableDriver = relnet.Driver

// UDPOptions configures a UDP rail (profile, MTU, reliability knobs).
type UDPOptions = udpdrv.Options

// NewUDP builds a reliable UDP rail driver over conn: datagram framing,
// pooled reads and peer filtering from udpdrv; sequencing, acks and
// retransmission from relnet. A non-nil peer treats the socket as
// unconnected and aims every datagram at that address; a nil peer
// requires a connected socket (net.DialUDP). Most callers want session
// rails with Proto "udp" instead — the handshake lands on this.
func NewUDP(conn *net.UDPConn, peer *net.UDPAddr, opts UDPOptions) *ReliableDriver {
	return udpdrv.New(conn, peer, opts)
}

// Shared-memory rails (same-host peers; Linux /dev/shm).

// ShmOptions configures a shared-memory rail: profile, ring and
// rendezvous-arena sizes, the inline threshold and the liveness knobs.
type ShmOptions = shmdrv.Options

// ShmDriver is one side of a shared-memory rail.
type ShmDriver = shmdrv.Driver

// ShmSupported reports whether this host can carry shared-memory rails
// (Linux with a usable /dev/shm). On other platforms the constructors
// fail and session rails with Proto "shm" are rejected at Listen.
func ShmSupported() bool { return shmdrv.Supported() }

// NewShm attaches to the named segment if a peer already created it,
// else creates it — the symmetric constructor for two same-host
// processes that agreed on a name out of band. Most callers want
// session rails with Proto "shm" instead, which negotiate a fresh
// anonymous segment per session.
func NewShm(name string, opts ShmOptions) (*ShmDriver, error) { return shmdrv.New(name, opts) }

// NewShmPair builds both sides of a shared-memory rail in one process —
// two independent mappings of one anonymous segment — for tests,
// benchmarks and demos.
func NewShmPair(opts ShmOptions) (*ShmDriver, *ShmDriver, error) { return shmdrv.Pair(opts) }

// ShmSegmentName returns a fresh single-use segment name for NewShm:
// unique per process and call, and carrying the prefix the orphan
// reaper scans for, so a crashed process's segments are reclaimable.
func ShmSegmentName() string { return shmring.RandomName() }

// ReapShmOrphans removes segments left in /dev/shm by crashed
// processes (creator pid no longer alive) and reports how many it
// unlinked. Live segments are never touched.
func ReapShmOrphans() int { return shmring.ReapOrphans() }

// Tracing.

// TraceCollector accumulates engine trace events for diagnostics.
type TraceCollector = trace.Collector

// NewTraceCollector returns a collector keeping at most max events
// (0 = unbounded); install its Hook as Config.Trace.
func NewTraceCollector(max int) *TraceCollector { return trace.New(max) }

// TraceTimeline renders per-rail occupancy lanes from collected events:
// packet posts marked by kind (D/R/C/K, H for speculative hedge
// duplicates), '=' while the rail is busy, 'x' where a hedged duplicate
// was cancelled after losing its race, 'X' where the rail failed.
func TraceTimeline(events []TraceEvent, width int) string { return trace.Timeline(events, width) }

// Sampling.

// SampleRatios derives stripping ratios from per-rail bandwidths.
func SampleRatios(bandwidths []float64) []float64 { return sampling.Ratios(bandwidths) }

// SaveProfiles persists sampled rail profiles as JSON.
func SaveProfiles(path string, profiles []Profile) error { return sampling.Save(path, profiles) }

// LoadProfiles reads rail profiles persisted by SaveProfiles.
func LoadProfiles(path string) ([]Profile, error) { return sampling.Load(path) }
