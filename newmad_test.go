package newmad_test

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"newmad"
)

func TestPublicAPISimExchange(t *testing.T) {
	pair := newmad.NewSimPair(newmad.SimPairConfig{
		NICs:     []newmad.NICParams{newmad.Myri10G(), newmad.QsNetII()},
		Strategy: newmad.StrategySplit,
		Sample:   true,
	})
	msg := make([]byte, 1<<20)
	for i := range msg {
		msg[i] = byte(i * 3)
	}
	recv := make([]byte, len(msg))
	pair.W.Spawn("rx", func(p *newmad.Proc) {
		rr := pair.GateBA.Irecv(1, recv)
		newmad.WaitSim(p, rr)
	})
	pair.W.Spawn("tx", func(p *newmad.Proc) {
		sr := pair.GateAB.Isend(1, msg)
		newmad.WaitSim(p, sr)
	})
	pair.W.Run()
	if !bytes.Equal(recv, msg) {
		t.Fatal("payload mismatch through public API")
	}
	// The split strategy must have used both rails for a 1 MB body.
	p0, b0 := pair.GateAB.Rails()[0].Stats()
	p1, b1 := pair.GateAB.Rails()[1].Stats()
	if p0 == 0 || p1 == 0 || b0 == 0 || b1 == 0 {
		t.Fatalf("stripping unused: rail0 %d/%d rail1 %d/%d", p0, b0, p1, b1)
	}
}

func TestStrategyConstructors(t *testing.T) {
	for _, s := range []newmad.Strategy{
		newmad.StrategyFIFO(), newmad.StrategyAggreg(), newmad.StrategyBalance(),
		newmad.StrategyAggRail(), newmad.StrategySplit(), newmad.StrategySplitIso(),
	} {
		if s.Name() == "" {
			t.Error("unnamed strategy")
		}
	}
	for _, name := range []string{"fifo", "aggreg", "balance", "aggrail", "split", "split-iso"} {
		s, err := newmad.StrategyByName(name)
		if err != nil || s.Name() != name {
			t.Errorf("StrategyByName(%q): %v", name, err)
		}
	}
	if _, err := newmad.StrategyByName("nope"); err == nil {
		t.Error("bad name accepted")
	}
}

func TestSampleRatios(t *testing.T) {
	r := newmad.SampleRatios([]float64{3e9, 1e9})
	if r[0] != 0.75 || r[1] != 0.25 {
		t.Fatalf("ratios %v", r)
	}
}

func TestProfilesPersistence(t *testing.T) {
	path := t.TempDir() + "/p.json"
	in := []newmad.Profile{{Name: "x", Bandwidth: 5e8, EagerMax: 1024}}
	if err := newmad.SaveProfiles(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := newmad.LoadProfiles(path)
	if err != nil || len(out) != 1 || out[0] != in[0] {
		t.Fatalf("round trip: %v %v", out, err)
	}
}

func TestPublicAPITCP(t *testing.T) {
	engA := newmad.New(newmad.Config{Strategy: newmad.StrategyBalance()})
	engB := newmad.New(newmad.Config{Strategy: newmad.StrategyBalance()})
	defer engA.Close()
	defer engB.Close()
	gateAB := engA.NewGate("B")
	gateBA := engB.NewGate("A")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	acc := make(chan newmad.Driver, 1)
	errc := make(chan error, 1)
	go func() {
		d, err := newmad.AcceptTCP(l, newmad.TCPOptions{})
		if err != nil {
			errc <- err
			return
		}
		acc <- d
	}()
	dialer, err := newmad.DialTCP(l.Addr().String(), newmad.TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gateAB.AddRail(dialer)
	select {
	case d := <-acc:
		gateBA.AddRail(d)
	case err := <-errc:
		t.Fatal(err)
	}

	msg := []byte("real sockets through the facade")
	recv := make([]byte, len(msg))
	done := make(chan struct{})
	go func() {
		defer close(done)
		rr := gateBA.Irecv(1, recv)
		if err := engB.Wait(rr); err != nil {
			t.Error(err)
		}
	}()
	sr := gateAB.Isend(1, msg)
	if err := engA.Wait(sr); err != nil {
		t.Fatal(err)
	}
	<-done
	if !bytes.Equal(recv, msg) {
		t.Fatal("payload mismatch over TCP facade")
	}
}

// TestPublicAPICancelAndDeadlines exercises the context-aware request
// lifecycle through the facade: virtual-time deadlines via WaitSimCtx,
// Request.Cancel propagating an abort to the peer, and the negotiated
// session API's ctx + SessionOptions signatures.
func TestPublicAPICancelAndDeadlines(t *testing.T) {
	pair := newmad.NewSimPair(newmad.SimPairConfig{
		NICs:     []newmad.NICParams{newmad.Myri10G(), newmad.QsNetII()},
		Strategy: newmad.StrategySplit,
	})
	var deadlineErr, recvErr error
	pair.W.Spawn("deadline", func(p *newmad.Proc) {
		// Nobody serves tag 1: the wait must expire on the virtual clock.
		rr := pair.GateBA.Irecv(1, make([]byte, 16))
		ctx := newmad.WithSimTimeout(context.Background(), p, time.Millisecond)
		deadlineErr = newmad.WaitSimCtx(ctx, p, rr)
		rr.Cancel(deadlineErr)
		// A cancelled send aborts the peer's matching receive.
		sr := pair.GateBA.Isend(2, make([]byte, 1<<20))
		sr.Cancel(nil)
		_ = newmad.WaitSimCtx(context.Background(), p, sr)
	})
	pair.W.Spawn("peer", func(p *newmad.Proc) {
		p.Sleep(5e6) // 5ms: past the deadline and the cancel
		rr := pair.GateAB.Irecv(2, make([]byte, 1<<20))
		recvErr = newmad.WaitSimCtx(context.Background(), p, rr)
	})
	pair.W.Run()
	if !errors.Is(deadlineErr, context.DeadlineExceeded) {
		t.Fatalf("WaitSimCtx = %v, want DeadlineExceeded", deadlineErr)
	}
	if !errors.Is(recvErr, newmad.ErrMsgAborted) {
		t.Fatalf("aborted recv = %v, want ErrMsgAborted", recvErr)
	}
}

func TestSessionFacadeCtx(t *testing.T) {
	eng := newmad.New(newmad.Config{Strategy: newmad.StrategySplit()})
	defer eng.Close()
	srv, err := newmad.ListenSession(context.Background(), eng, "srv", "127.0.0.1:0",
		[]newmad.RailSpec{{Addr: "127.0.0.1:0"}},
		newmad.SessionOptions{HandshakeTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, _, err := srv.Accept(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Accept with expired ctx = %v", err)
	}
}

func TestTraceCollectorFacade(t *testing.T) {
	col := newmad.NewTraceCollector(10)
	pair := newmad.NewSimPair(newmad.SimPairConfig{
		NICs:     []newmad.NICParams{newmad.QsNetII()},
		Strategy: newmad.StrategyFIFO,
		TraceA:   col.Hook(),
	})
	recv := make([]byte, 4)
	pair.W.Spawn("rx", func(p *newmad.Proc) {
		newmad.WaitSim(p, pair.GateBA.Irecv(1, recv))
	})
	pair.W.Spawn("tx", func(p *newmad.Proc) {
		newmad.WaitSim(p, pair.GateAB.Isend(1, []byte{1, 2, 3, 4}))
	})
	pair.W.Run()
	if len(col.Events()) == 0 {
		t.Fatal("no trace events collected")
	}
}
