// Command nmad-sample runs the initialization-time network sampling on
// the simulated rails, prints the fitted profiles and stripping ratios,
// and optionally persists them to JSON (paper §3.4).
//
// Usage:
//
//	nmad-sample                     # sample myri10g + qsnet2, print
//	nmad-sample -rails myri10g,gige # choose rail models
//	nmad-sample -o profiles.json    # persist for later runs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"newmad/internal/core"
	"newmad/internal/des"
	"newmad/internal/sampling"
	"newmad/internal/simnet"
)

func main() {
	var (
		railsFlag = flag.String("rails", "myri10g,qsnet2", "comma-separated rail models (myri10g, qsnet2, gige)")
		outFlag   = flag.String("o", "", "write sampled profiles to this JSON file")
	)
	flag.Parse()
	if err := run(*railsFlag, *outFlag); err != nil {
		fmt.Fprintln(os.Stderr, "nmad-sample:", err)
		os.Exit(1)
	}
}

func nicByName(name string) (simnet.NICParams, error) {
	switch name {
	case "myri10g":
		return simnet.Myri10G(), nil
	case "qsnet2":
		return simnet.QsNetII(), nil
	case "gige":
		return simnet.GigE(), nil
	default:
		return simnet.NICParams{}, fmt.Errorf("unknown rail model %q", name)
	}
}

func run(railsCSV, out string) error {
	w := des.NewWorld()
	hostA := simnet.NewHost(w, "A", simnet.Opteron())
	hostB := simnet.NewHost(w, "B", simnet.Opteron())
	var profiles []core.Profile
	for _, name := range strings.Split(railsCSV, ",") {
		params, err := nicByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		na := hostA.NewNIC(params)
		nb := hostB.NewNIC(params)
		simnet.Connect(na, nb)
		profiles = append(profiles, sampling.SampleNICPair(w, na, nb, nil))
	}
	var bws []float64
	fmt.Printf("%-10s %12s %14s %10s %10s\n", "rail", "latency", "bandwidth", "eager_max", "pio_max")
	for _, p := range profiles {
		fmt.Printf("%-10s %12v %11.1f MB/s %10d %10d\n",
			p.Name, p.Latency, p.Bandwidth/1e6, p.EagerMax, p.PIOMax)
		bws = append(bws, p.Bandwidth)
	}
	ratios := sampling.Ratios(bws)
	fmt.Printf("stripping ratios:")
	for i, r := range ratios {
		fmt.Printf(" %s=%.3f", profiles[i].Name, r)
	}
	fmt.Println()
	if out != "" {
		if err := sampling.Save(out, profiles); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}
