// Command nmad-pingpong runs a real two-process multi-rail ping-pong over
// TCP: the identical engine and strategies that drive the simulated
// figures, on genuine sockets. Rails are negotiated via the session
// layer — the server offers N rails, the client brings them all up —
// and the sweep plan travels over the engine itself as message 0.
//
//	nmad-pingpong -serve :7000 -rails 2              # server
//	nmad-pingpong -connect host:7000                 # client, prints sweep
//
// Flags -strategy, -sizes, -segs and -iters shape the client's sweep.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"newmad"
)

const (
	planTag = 1
	dataTag = 2
)

// plan is the sweep description the client ships to the server.
type plan struct {
	Sizes []int `json:"sizes"`
	Segs  int   `json:"segs"`
	Iters int   `json:"iters"`
}

func main() {
	var (
		serve     = flag.String("serve", "", "control address to serve a session on (server)")
		rails     = flag.Int("rails", 2, "rails to offer (server)")
		connect   = flag.String("connect", "", "control address to connect to (client)")
		stratArg  = flag.String("strategy", "split", "strategy name (fifo, aggreg, balance, aggrail, split, split-iso, split-dyn)")
		sizesArg  = flag.String("sizes", "64,4096,65536,1048576", "comma-separated message sizes in bytes")
		segs      = flag.Int("segs", 2, "segments per message")
		iters     = flag.Int("iters", 50, "iterations per size")
		handshake = flag.Duration("handshake-timeout", 30*time.Second, "session handshake timeout")
	)
	flag.Parse()
	if (*serve == "") == (*connect == "") {
		fmt.Fprintln(os.Stderr, "nmad-pingpong: exactly one of -serve or -connect is required")
		os.Exit(2)
	}
	var err error
	if *serve != "" {
		err = runServer(*serve, *rails, *stratArg, *handshake)
	} else {
		err = runClient(*connect, *stratArg, *sizesArg, *segs, *iters, *handshake)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nmad-pingpong:", err)
		os.Exit(1)
	}
}

func engine(stratName string) (*newmad.Engine, error) {
	strat, err := newmad.StrategyByName(stratName)
	if err != nil {
		return nil, err
	}
	return newmad.New(newmad.Config{Strategy: strat}), nil
}

func runServer(ctrlAddr string, rails int, stratName string, handshake time.Duration) error {
	ctx := context.Background()
	eng, err := engine(stratName)
	if err != nil {
		return err
	}
	defer eng.Close()
	specs := make([]newmad.RailSpec, rails)
	for i := range specs {
		specs[i] = newmad.RailSpec{
			Addr:    "0.0.0.0:0",
			Profile: newmad.Profile{Name: fmt.Sprintf("tcp%d", i)},
		}
	}
	srv, err := newmad.ListenSession(ctx, eng, "pingpong-server", ctrlAddr, specs,
		newmad.SessionOptions{HandshakeTimeout: handshake})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("serving on %s, offering %d rail(s)\n", srv.ControlAddr(), rails)
	gate, peer, err := srv.Accept(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("session up with %q, %d rails\n", peer, len(gate.Rails()))

	planBuf := make([]byte, 4096)
	rr := gate.Irecv(planTag, planBuf)
	if err := eng.Wait(rr); err != nil {
		return err
	}
	var p plan
	if err := json.Unmarshal(planBuf[:rr.Len()], &p); err != nil {
		return fmt.Errorf("bad plan: %w", err)
	}
	fmt.Printf("plan: sizes=%v segs=%d iters=%d\n", p.Sizes, p.Segs, p.Iters)

	maxSize := 0
	for _, s := range p.Sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	buf := make([]byte, maxSize)
	for _, size := range p.Sizes {
		for it := 0; it < p.Iters; it++ {
			rr := gate.Irecv(dataTag, buf)
			if err := eng.Wait(rr); err != nil {
				return err
			}
			sr := gate.Isendv(dataTag, segsOf(buf[:size], p.Segs))
			if err := eng.Wait(sr); err != nil {
				return err
			}
		}
	}
	st := gate.Stats()
	fmt.Printf("server done: %d msgs, %d bytes, %d rendezvous, %d aggregates\n",
		st.MsgsSent, st.BytesSent, st.RdvStarted, st.AggPackets)
	return nil
}

func runClient(ctrlAddr, stratName, sizesArg string, segs, iters int, handshake time.Duration) error {
	eng, err := engine(stratName)
	if err != nil {
		return err
	}
	defer eng.Close()
	sizes, err := parseSizes(sizesArg)
	if err != nil {
		return err
	}
	gate, srvName, err := newmad.ConnectSession(context.Background(), eng, "pingpong-client", ctrlAddr,
		newmad.SessionOptions{HandshakeTimeout: handshake})
	if err != nil {
		return err
	}
	fmt.Printf("connected to %q, %d rails, strategy %s\n", srvName, len(gate.Rails()), stratName)

	planJSON, err := json.Marshal(plan{Sizes: sizes, Segs: segs, Iters: iters})
	if err != nil {
		return err
	}
	if err := eng.Wait(gate.Isend(planTag, planJSON)); err != nil {
		return err
	}

	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	sendBuf := make([]byte, maxSize)
	for i := range sendBuf {
		sendBuf[i] = byte(i)
	}
	recvBuf := make([]byte, maxSize)

	fmt.Printf("%10s %14s %14s\n", "size", "half-rtt", "bandwidth")
	for _, size := range sizes {
		start := time.Now()
		for it := 0; it < iters; it++ {
			rr := gate.Irecv(dataTag, recvBuf)
			sr := gate.Isendv(dataTag, segsOf(sendBuf[:size], segs))
			if err := eng.WaitAll(sr, rr); err != nil {
				return err
			}
		}
		half := time.Since(start) / time.Duration(2*iters)
		mbps := float64(size) / float64(half.Nanoseconds()) * 1e3
		fmt.Printf("%10d %14v %11.1f MB/s\n", size, half, mbps)
	}
	for i, r := range gate.Rails() {
		pkts, bytes := r.Stats()
		fmt.Printf("rail %d (%s): %d packets, %d bytes\n", i, r.Profile().Name, pkts, bytes)
	}
	return nil
}

func segsOf(buf []byte, n int) [][]byte {
	if n <= 1 || len(buf) == 0 {
		return [][]byte{buf}
	}
	per := len(buf) / n
	if per == 0 {
		per = 1
	}
	var out [][]byte
	for off := 0; off < len(buf); {
		end := off + per
		if len(out) == n-1 || end > len(buf) {
			end = len(buf)
		}
		out = append(out, buf[off:end])
		off = end
	}
	return out
}

func parseSizes(arg string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(arg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}
