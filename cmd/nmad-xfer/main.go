// Command nmad-xfer moves a file between two machines over negotiated
// multi-rail TCP sessions, striping large chunks across every rail with
// the split strategy and verifying an end-to-end checksum.
//
//	nmad-xfer -recv :7000 -o out.bin -rails 2     # receiver (server)
//	nmad-xfer -send host:7000 -i in.bin           # sender (client)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"newmad"
	"newmad/internal/xfer"
)

func main() {
	var (
		recvAddr  = flag.String("recv", "", "control address to receive on (server)")
		sendAddr  = flag.String("send", "", "control address to send to (client)")
		inFile    = flag.String("i", "", "file to send")
		outFile   = flag.String("o", "", "file to write")
		rails     = flag.Int("rails", 2, "rails to offer (receiver)")
		chunkKB   = flag.Int("chunk", 4096, "chunk size in KiB")
		strat     = flag.String("strategy", "split", "scheduling strategy")
		handshake = flag.Duration("handshake-timeout", 30*time.Second, "session handshake timeout")
	)
	flag.Parse()
	if (*recvAddr == "") == (*sendAddr == "") {
		fmt.Fprintln(os.Stderr, "nmad-xfer: exactly one of -recv or -send is required")
		os.Exit(2)
	}
	var err error
	if *recvAddr != "" {
		err = runRecv(*recvAddr, *outFile, *rails, *strat, *chunkKB, *handshake)
	} else {
		err = runSend(*sendAddr, *inFile, *strat, *chunkKB, *handshake)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nmad-xfer:", err)
		os.Exit(1)
	}
}

func engine(strat string) (*newmad.Engine, error) {
	s, err := newmad.StrategyByName(strat)
	if err != nil {
		return nil, err
	}
	return newmad.New(newmad.Config{Strategy: s}), nil
}

func runRecv(ctrlAddr, outFile string, rails int, strat string, chunkKB int, handshake time.Duration) error {
	if outFile == "" {
		return fmt.Errorf("-o is required with -recv")
	}
	eng, err := engine(strat)
	if err != nil {
		return err
	}
	defer eng.Close()
	specs := make([]newmad.RailSpec, rails)
	for i := range specs {
		specs[i] = newmad.RailSpec{Addr: "0.0.0.0:0", Profile: newmad.Profile{Name: fmt.Sprintf("tcp%d", i)}}
	}
	srv, err := newmad.ListenSession(context.Background(), eng, "xfer-recv", ctrlAddr, specs,
		newmad.SessionOptions{HandshakeTimeout: handshake})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("receiving on %s (%d rails)\n", srv.ControlAddr(), rails)
	gate, peer, err := srv.Accept(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("session up with %q\n", peer)
	f, err := os.Create(outFile)
	if err != nil {
		return err
	}
	defer f.Close()
	start := time.Now()
	n, err := xfer.Recv(eng, gate, f, xfer.Options{ChunkSize: chunkKB << 10})
	if err != nil {
		return err
	}
	el := time.Since(start)
	fmt.Printf("received %d bytes in %v (%.1f MB/s), checksum OK\n", n, el, float64(n)/el.Seconds()/1e6)
	for i, r := range gate.Rails() {
		pkts, bytes := r.Stats()
		fmt.Printf("rail %d: %d packets, %d bytes\n", i, pkts, bytes)
	}
	return f.Sync()
}

func runSend(ctrlAddr, inFile, strat string, chunkKB int, handshake time.Duration) error {
	if inFile == "" {
		return fmt.Errorf("-i is required with -send")
	}
	eng, err := engine(strat)
	if err != nil {
		return err
	}
	defer eng.Close()
	f, err := os.Open(inFile)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	gate, peer, err := newmad.ConnectSession(context.Background(), eng, "xfer-send", ctrlAddr,
		newmad.SessionOptions{HandshakeTimeout: handshake})
	if err != nil {
		return err
	}
	fmt.Printf("sending %d bytes to %q over %d rails\n", st.Size(), peer, len(gate.Rails()))
	start := time.Now()
	if err := xfer.Send(eng, gate, f, st.Size(), xfer.Options{ChunkSize: chunkKB << 10}); err != nil {
		return err
	}
	el := time.Since(start)
	fmt.Printf("sent in %v (%.1f MB/s)\n", el, float64(st.Size())/el.Seconds()/1e6)
	return nil
}
