// Command nmad-bench regenerates the paper's evaluation figures on the
// simulated testbed and prints them as aligned tables or CSV.
//
// Usage:
//
//	nmad-bench                 # all figures, tables to stdout
//	nmad-bench -fig fig7       # one figure
//	nmad-bench -hedge -adaptive  # just the hedged/adaptive scheduling figures
//	nmad-bench -csv -out dir   # write <fig>.csv files into dir
//	nmad-bench -iters 16       # more timed iterations per point
//	nmad-bench -emit-json BENCH_6.json  # pinned perf report (exits 1
//	                           # if an allocation budget is exceeded)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"newmad/internal/bench"
)

func main() {
	var (
		figFlag  = flag.String("fig", "all", "figure id ("+strings.Join(bench.FigureIDs(), ", ")+") or 'all'")
		csvFlag  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		plotFlag = flag.Bool("plot", false, "render ASCII log-log plots instead of tables")
		outDir   = flag.String("out", "", "write one file per figure into this directory instead of stdout")
		warmup   = flag.Int("warmup", 2, "warmup iterations per point")
		iters    = flag.Int("iters", 8, "timed iterations per point")
		verify   = flag.Bool("verify", false, "verify payload integrity during measurement")
		check    = flag.Bool("check", false, "evaluate every paper claim and print a pass/fail table")
		collAlgo = flag.String("coll-algo", "", "force the collective algorithm of ext-coll's selected series (linear, tree, pipeline; default auto)")
		emitJSON = flag.String("emit-json", "", "write the pinned perf report (BENCH_*.json schema) to this path; exits 1 on an allocation budget regression")
		hedge    = flag.Bool("hedge", false, "shortcut for the hedged-scheduling figure (ext-hedge); combines with -adaptive")
		adaptive = flag.Bool("adaptive", false, "shortcut for the adaptive-selection figure (ext-adaptive); combines with -hedge")
	)
	flag.Parse()
	if *emitJSON != "" {
		report := bench.BuildPerfReport(bench.Quality{Warmup: *warmup, Iters: *iters, Verify: *verify})
		f, err := os.Create(*emitJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nmad-bench:", err)
			os.Exit(1)
		}
		werr := report.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "nmad-bench:", werr)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *emitJSON)
		if err := report.CheckBudgets(); err != nil {
			fmt.Fprintln(os.Stderr, "nmad-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *check {
		claims := bench.CheckClaims(bench.Quality{Warmup: *warmup, Iters: *iters, Verify: *verify})
		bench.WriteClaims(os.Stdout, claims)
		for _, c := range claims {
			if !c.OK {
				os.Exit(1)
			}
		}
		return
	}
	mode := modeTable
	if *csvFlag {
		mode = modeCSV
	}
	if *plotFlag {
		mode = modePlot
	}
	ids := bench.FigureIDs()
	if *figFlag != "all" {
		ids = []string{*figFlag}
	}
	if *hedge || *adaptive {
		// The shortcuts replace the default "all" set (and compose with
		// each other); an explicit -fig still wins.
		if *figFlag == "all" {
			ids = nil
			if *hedge {
				ids = append(ids, "ext-hedge")
			}
			if *adaptive {
				ids = append(ids, "ext-adaptive")
			}
		}
	}
	if err := run(ids, mode, *outDir, bench.Quality{Warmup: *warmup, Iters: *iters, Verify: *verify, Coll: *collAlgo}); err != nil {
		fmt.Fprintln(os.Stderr, "nmad-bench:", err)
		os.Exit(1)
	}
}

type outMode int

const (
	modeTable outMode = iota
	modeCSV
	modePlot
)

func run(ids []string, mode outMode, outDir string, q bench.Quality) error {
	for _, id := range ids {
		fig, err := bench.Build(id, q)
		if err != nil {
			return err
		}
		out := os.Stdout
		if outDir != "" {
			ext := ".txt"
			if mode == modeCSV {
				ext = ".csv"
			}
			f, err := os.Create(filepath.Join(outDir, id+ext))
			if err != nil {
				return err
			}
			writeFig(fig, mode, f)
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", f.Name())
			continue
		}
		writeFig(fig, mode, out)
		fmt.Fprintln(out)
	}
	return nil
}

func writeFig(fig *bench.Figure, mode outMode, f *os.File) {
	switch mode {
	case modeCSV:
		fig.WriteCSV(f)
	case modePlot:
		fig.WritePlot(f, 64, 18)
	default:
		fig.WriteTable(f)
	}
}
